// Shared plumbing for the experiment harnesses (bench_theorem1 ... ).
// Each binary prints the tables promised by the experiment index in
// DESIGN.md. Setting DSND_BENCH_SCALE=N (integer, default 1) multiplies
// problem sizes/seed counts for longer, higher-confidence runs.
//
// Machine-readable output: every bench that constructs a JsonWriter
// accepts `--json <path>` and then also writes its results as a JSON
// array of flat records — the format BENCH_*.json perf-trajectory files
// are built from.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/relabel.hpp"
#include "graph/validator.hpp"
#include "simulator/transport.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace dsnd::bench {

/// Graph::fingerprint as the zero-padded hex string the JSON records
/// carry (a bare uint64 would overflow doubles in lax JSON parsers).
/// Matches chkgraph's "fingerprint:" line and the service cache key.
inline std::string fingerprint_hex(const Graph& g) {
  std::ostringstream hex;
  hex << std::hex << g.fingerprint();
  std::string digits = hex.str();
  return std::string(16 - digits.size(), '0') + digits;
}

inline int scale() {
  if (const char* env = std::getenv("DSND_BENCH_SCALE")) {
    const int value = std::atoi(env);
    if (value >= 1) return value;
  }
  return 1;
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Renders kInfiniteDiameter as "inf" for table cells.
inline std::string diameter_cell(std::int32_t diameter) {
  return diameter == kInfiniteDiameter ? "inf" : std::to_string(diameter);
}

/// The families every experiment sweeps unless stated otherwise.
inline const std::vector<std::string>& default_families() {
  static const std::vector<std::string> kNames = {"gnp-sparse", "grid",
                                                  "random-tree"};
  return kNames;
}

/// Las Vegas overflow accounting shared by the theorem benches. Under
/// the default OverflowPolicy::kRetry every run's output is valid
/// unconditionally, so the benches no longer skip "overflow rows" — they
/// validate everything and report what the recovery cost (retries /
/// extra rounds). The one case a validator may still legitimately flag
/// is a run that ACCEPTED truncated samples (kTruncate ablations, or a
/// blown retry budget), which accepted_truncated_samples() detects; all
/// six theorem benches consult it the same way round (bench_theorem1
/// historically inverted the test).
inline bool accepted_truncated_samples(const CarveResult& carve) {
  return carve.radius_overflow;
}

/// Sweep-level tally of the Lemma 1 recovery machinery; one per table
/// row (or per bench), printed as a summary line or table cells.
struct RetryStats {
  std::int64_t retries = 0;
  std::int64_t extra_rounds = 0;
  int truncated_runs = 0;
  /// Runs where Lemma 1's event fired at least once (recovered or not) —
  /// the quantity the paper bounds by 2/c per run.
  int event_runs = 0;

  void observe(const CarveResult& carve) {
    retries += carve.retries;
    extra_rounds += carve.extra_rounds;
    if (accepted_truncated_samples(carve)) ++truncated_runs;
    if (carve.retries > 0 || accepted_truncated_samples(carve)) ++event_runs;
  }

  void print_line(std::ostream& out) const {
    out << "Lemma 1 recoveries: retries=" << retries
        << " extra_rounds=" << extra_rounds
        << " truncated_runs=" << truncated_runs << "\n";
  }
};

/// Returns true iff `flag` appears verbatim in argv.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Value of `--flag <int>`; fallback when absent or malformed. "0" is a
/// valid value (EngineOptions::threads = 0 means hardware concurrency).
inline int int_flag(int argc, char** argv, const std::string& flag,
                    int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      char* end = nullptr;
      const long value = std::strtol(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || value < 0) return fallback;
      return static_cast<int>(value);
    }
  }
  return fallback;
}

/// Collects flat records and writes them as a JSON array on flush().
/// Construct via from_args: inactive (records discarded) unless the
/// bench was invoked with `--json <path>`.
class JsonWriter {
 public:
  /// One flat JSON object; values are rendered as they are added.
  class Record {
   public:
    Record& field(const std::string& key, const std::string& value) {
      std::string escaped;
      for (const char c : value) {
        if (c == '"' || c == '\\') escaped.push_back('\\');
        escaped.push_back(c);
      }
      entries_.emplace_back(key, '"' + escaped + '"');
      return *this;
    }

    Record& field(const std::string& key, const char* value) {
      return field(key, std::string(value));
    }

    Record& field(const std::string& key, double value) {
      std::ostringstream out;
      out.precision(6);
      out << std::fixed << value;
      entries_.emplace_back(key, out.str());
      return *this;
    }

    template <typename T,
              typename std::enable_if_t<std::is_integral_v<T>, int> = 0>
    Record& field(const std::string& key, T value) {
      entries_.emplace_back(key, std::to_string(value));
      return *this;
    }

   private:
    friend class JsonWriter;
    std::vector<std::pair<std::string, std::string>> entries_;
  };

  static JsonWriter from_args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") return JsonWriter(argv[i + 1]);
    }
    return JsonWriter("");
  }

  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  Record& record() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes all records; called automatically at destruction.
  void flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      const auto& entries = records_[r].entries_;
      for (std::size_t e = 0; e < entries.size(); ++e) {
        out << '"' << entries[e].first << "\": " << entries[e].second;
        if (e + 1 < entries.size()) out << ", ";
      }
      out << (r + 1 < records_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    std::cout << "\nwrote " << records_.size() << " JSON records to "
              << path_ << "\n";
  }

  ~JsonWriter() { flush(); }

 private:
  std::string path_;
  std::deque<Record> records_;  // deque: record() references stay valid
  bool flushed_ = false;
};

/// One engine-scaling measurement case: which theorem schedule to run,
/// how to run it (threads, layout), and whether to batch-validate the
/// resulting clustering.
struct EngineCaseOptions {
  int theorem = 1;
  /// k for Theorems 1-2 (0 = ceil(ln n)); lambda for Theorem 3
  /// (0 = the default lambda of 3).
  std::int32_t param = 0;
  /// Run validate_decomposition_fast on the output and report its wall
  /// time and verdict (complete + proper coloring + connected clusters).
  bool validate = false;
  /// Engine worker threads (EngineOptions::threads; 1 = serial).
  unsigned threads = 1;
  /// When set, run on this relabeled graph instead of `g` (the
  /// clustering comes back in original ids and is validated against the
  /// original `g`); layout_name labels the row.
  const LayoutGraph* layout = nullptr;
  std::string layout_name = "none";
  /// Graph construction wall time to report alongside the run (excluded
  /// from wall_ms as always); < 0 = not measured, field omitted.
  double construct_ms = -1.0;
  /// Carving seed. The theorems are probabilistic (success with
  /// probability 1 - O(1)/c); since PR 5 a seed that hits Lemma 1's
  /// radius-overflow event is recovered by the Las Vegas recarve loop —
  /// the row reports the cost via the retries / extra_rounds JSON fields
  /// and stays valid. Only kTruncate (or a blown retry budget) can still
  /// produce a legitimately INVALID row, flagged via radius_overflow.
  std::uint64_t seed = 42;
  /// When > 0, overrides the schedule's Lemma 1 threshold. The CI
  /// overflow smoke lowers it below k + 1 so the recarve loop triggers
  /// (radii in [override, k+1) would not even truncate — the point is
  /// to exercise the retry machinery, not to produce invalid output).
  double radius_overflow_at = 0.0;
  /// When > 0, overrides the schedule's per-phase retry budget. The
  /// overflow smoke raises it so a lowered threshold can never fall
  /// back to accepting overflowed samples.
  std::int32_t max_retries_per_phase = 0;
  /// Record the degree-distribution summary (min/mean/p90/p99/max,
  /// isolated count, MLE power-law alpha) in the JSON record. The
  /// scale-free sweeps set this so carve quality on heavy-tailed
  /// graphs can be read next to how heavy the tail actually was.
  bool degree_stats = false;
  /// When set, run the case through a FaultyTransport driven by this
  /// plan. The row then also reports the carve status, the whole-run
  /// retries the verify-and-recover loop spent, and the aggregated
  /// fault counters. The valid column distinguishes a NAMED failure
  /// (status string, counters nonzero) from a true contract violation
  /// ("INVALID": the run claimed ok but external validation failed) —
  /// only the latter is CI-grep bait.
  const FaultPlan* faults = nullptr;
  /// Checkpoint-rollback budget override (CarveSchedule::max_rollbacks):
  /// -1 keeps the schedule default, 0 disables rollback recovery (the
  /// whole-run-retry-only baseline of the recovery-cost A/B rows).
  std::int32_t max_rollbacks = -1;
  /// Engine round budget override (EngineOptions::max_rounds); 0 keeps
  /// the schedule-derived default.
  std::size_t max_rounds = 0;
  /// When non-null, filled with the row's outcome so sweep drivers can
  /// aggregate validity rates without re-validating.
  struct EngineCaseOutcome* outcome = nullptr;
  /// When > 1, run the case this many times on ONE reusable CarveContext:
  /// the first (cold) run pays context construction — engine, worker
  /// pool, protocol arrays — and runs 2..N are warm re-runs on the
  /// parked pool. wall_ms then reports the cold run, and the JSON record
  /// gains cold_ms / warm_ms (minimum over the warm runs) / warm_speedup.
  /// Every repeat must reproduce the cold run bit for bit; a divergent
  /// warm run flags the row INVALID (that IS a contract violation).
  int repeat = 1;
  /// EngineOptions::elide_quiet_rounds for the row — the barrier-elision
  /// A/B knob. Results are identical either way; only wall time may
  /// move. Rows with the fast path disabled mark their JSON record with
  /// "elide_quiet_rounds": 0 so the split is visible in BENCH files.
  bool elide_quiet_rounds = true;
};

/// What one engine_scaling_case actually did — the valid-column string
/// plus the chaos accounting, for drivers that summarize across rows.
struct EngineCaseOutcome {
  std::string valid;
  CarveStatus status = CarveStatus::kOk;
  std::int32_t run_retries = 0;
  std::int32_t rollbacks = 0;
  std::int64_t replayed_phases = 0;
  std::uint64_t rejoins = 0;
  FaultCounters faults;
  /// repeat > 1 only: the cold/warm wall times and whether any warm run
  /// diverged from the cold one (drivers fail on warm_ms > cold_ms and
  /// on any mismatch).
  double cold_ms = -1.0;
  double warm_ms = -1.0;
  bool warm_mismatch = false;
};

/// Shared engine-scaling measurement (bench_congest E8d and
/// bench_headline_scaling E4c): runs the selected theorem schedule as a
/// CONGEST protocol (seed 42) on `g`, appends one table row and one JSON
/// record, and returns the wall time in ms. Graph construction is
/// excluded from the timing. The columns for the table are
/// {schedule, family, n, m, threads, rounds, messages, words,
/// activations, wall_ms, validate_ms, valid}.
inline double engine_scaling_case(const std::string& family, const Graph& g,
                                  Table& table, JsonWriter& json,
                                  const EngineCaseOptions& options = {}) {
  const VertexId n = g.num_vertices();
  CarveSchedule schedule =
      options.theorem == 1 ? theorem1_schedule(n, options.param, 4.0)
      : options.theorem == 2
          ? theorem2_schedule(n, options.param, 6.0)
          : theorem3_schedule(n, options.param == 0 ? 3 : options.param,
                              4.0);
  if (options.radius_overflow_at > 0.0) {
    schedule.radius_overflow_at = options.radius_overflow_at;
  }
  if (options.max_retries_per_phase > 0) {
    schedule.max_retries_per_phase = options.max_retries_per_phase;
  }
  if (options.max_rollbacks >= 0) {
    schedule.max_rollbacks = options.max_rollbacks;
  }
  EngineOptions engine;
  engine.threads = options.threads;
  engine.max_rounds = options.max_rounds;
  engine.elide_quiet_rounds = options.elide_quiet_rounds;
  std::optional<FaultyTransport> chaos;
  if (options.faults) {
    chaos.emplace(*options.faults);
    engine.transport = &*chaos;
  }
  DistributedRun run;
  double wall_ms = 0.0;
  double cold_ms = -1.0;
  double warm_ms = -1.0;
  bool warm_mismatch = false;
  if (options.repeat > 1) {
    // Cold = context construction (engine, worker pool, protocol arrays)
    // plus the first run; warm = re-runs on the same context, whose pool
    // stayed parked and whose buffers kept their capacity. Warm runs
    // must reproduce the cold clustering bit for bit.
    Timer cold_timer;
    std::optional<CarveContext> context;
    if (options.layout) {
      context.emplace(*options.layout, engine);
    } else {
      context.emplace(g, engine);
    }
    run = run_schedule_distributed(*context, schedule, options.seed);
    cold_ms = cold_timer.elapsed_millis();
    wall_ms = cold_ms;
    for (int rep = 1; rep < options.repeat; ++rep) {
      Timer warm_timer;
      const DistributedRun warm =
          run_schedule_distributed(*context, schedule, options.seed);
      const double ms = warm_timer.elapsed_millis();
      if (warm_ms < 0.0 || ms < warm_ms) warm_ms = ms;
      warm_mismatch |=
          warm.sim.rounds != run.sim.rounds ||
          warm.sim.messages != run.sim.messages ||
          warm.sim.words != run.sim.words ||
          warm.run.clustering().num_clusters() !=
              run.run.clustering().num_clusters() ||
          warm.run.clustering().num_colors() !=
              run.run.clustering().num_colors();
    }
  } else {
    Timer timer;
    run = options.layout
              ? run_schedule_distributed(*options.layout, schedule,
                                         options.seed, engine)
              : run_schedule_distributed(g, schedule, options.seed, engine);
    wall_ms = timer.elapsed_millis();
  }

  double validate_ms = 0.0;
  std::string valid_cell = "-";
  std::int32_t diameter_upper = 0;
  if (options.validate) {
    Timer validate_timer;
    const FastDecompositionReport report =
        validate_decomposition_fast(g, run.run.clustering());
    validate_ms = validate_timer.elapsed_millis();
    const bool valid = report.complete && report.proper_phase_coloring &&
                       report.all_clusters_connected;
    if (run.run.carve.status != CarveStatus::kOk) {
      // A named failure is the chaos contract holding, not a violation:
      // report the status string so the row reads as flagged, and keep
      // "INVALID" reserved for the silent case below.
      valid_cell = carve_status_name(run.run.carve.status);
    } else {
      valid_cell = valid ? "ok" : "INVALID";
    }
    diameter_upper = report.strong_diameter_upper;
  }
  if (warm_mismatch) {
    // A warm run that diverges from its cold twin violates the
    // bit-identity contract outright — that IS grep bait.
    valid_cell = "INVALID";
  }

  table.row()
      .cell(schedule.name)
      .cell(family)
      .cell(static_cast<std::int64_t>(n))
      .cell(g.num_edges())
      .cell(static_cast<std::uint64_t>(options.threads))
      .cell(static_cast<std::uint64_t>(run.sim.rounds))
      .cell(run.sim.messages)
      .cell(run.sim.words)
      .cell(run.sim.vertex_activations)
      .cell(wall_ms, 1)
      .cell(options.validate ? format_double(validate_ms, 1) : "-")
      .cell(valid_cell);
  auto& record = json.record()
                     .field("section", "engine_scaling")
                     .field("schedule", schedule.name)
                     .field("family", family)
                     .field("n", static_cast<std::int64_t>(n))
                     .field("m", g.num_edges())
                     .field("fingerprint", fingerprint_hex(g))
                     .field("threads", static_cast<std::uint64_t>(
                                           options.threads))
                     .field("layout", options.layout_name)
                     .field("rounds", static_cast<std::uint64_t>(run.sim.rounds))
                     .field("messages", run.sim.messages)
                     .field("words", run.sim.words)
                     .field("activations", run.sim.vertex_activations)
                     .field("wall_ms", wall_ms);
  if (options.seed != 42) {
    record.field("seed", options.seed);
  }
  if (options.construct_ms >= 0.0) {
    record.field("construct_ms", options.construct_ms);
  }
  if (options.repeat > 1) {
    record.field("repeat", options.repeat)
        .field("cold_ms", cold_ms)
        .field("warm_ms", warm_ms)
        .field("warm_speedup", cold_ms / std::max(warm_ms, 1e-6));
  }
  if (!options.elide_quiet_rounds) {
    record.field("elide_quiet_rounds", std::uint64_t{0});
  }
  // Las Vegas recovery cost, always recorded (zero = Lemma 1 never
  // fired) so the CI overflow smoke can grep for a nonzero count.
  record.field("retries", run.run.carve.retries)
      .field("extra_rounds", run.run.carve.extra_rounds);
  if (accepted_truncated_samples(run.run.carve)) {
    record.field("radius_overflow", std::uint64_t{1});
  }
  if (options.validate) {
    record.field("validate_ms", validate_ms)
        .field("valid", valid_cell)
        .field("strong_diameter_upper", diameter_upper);
  }
  if (options.faults) {
    const FaultCounters& faults = run.run.carve.faults;
    record.field("status", carve_status_name(run.run.carve.status))
        .field("run_retries", run.run.carve.run_retries)
        .field("rollbacks", run.run.carve.rollbacks)
        .field("replayed_phases", run.run.carve.replayed_phases)
        .field("dropped", faults.dropped)
        .field("delayed", faults.delayed)
        .field("duplicated", faults.duplicated)
        .field("crashed", faults.crashed)
        .field("drop_rate", options.faults->drop_rate);
    if (faults.rejoined != 0) {
      record.field("rejoined", faults.rejoined);
    }
  }
  if (options.outcome) {
    options.outcome->valid = valid_cell;
    options.outcome->status = run.run.carve.status;
    options.outcome->run_retries = run.run.carve.run_retries;
    options.outcome->rollbacks = run.run.carve.rollbacks;
    options.outcome->replayed_phases = run.run.carve.replayed_phases;
    options.outcome->rejoins = run.run.carve.rejoins;
    options.outcome->faults = run.run.carve.faults;
    options.outcome->cold_ms = cold_ms;
    options.outcome->warm_ms = warm_ms;
    options.outcome->warm_mismatch = warm_mismatch;
  }
  if (options.degree_stats) {
    const DegreeStats degrees = dsnd::degree_stats(g);
    record.field("deg_min", degrees.min_degree)
        .field("deg_mean", degrees.mean_degree)
        .field("deg_p90", degrees.p90_degree)
        .field("deg_p99", degrees.p99_degree)
        .field("deg_max", degrees.max_degree)
        .field("deg_isolated", degrees.isolated_vertices)
        .field("powerlaw_alpha", degrees.powerlaw_alpha);
  }
  return wall_ms;
}

}  // namespace dsnd::bench
