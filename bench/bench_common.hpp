// Shared plumbing for the experiment harnesses (bench_theorem1 ... ).
// Each binary prints the tables promised by the experiment index in
// DESIGN.md. Setting DSND_BENCH_SCALE=N (integer, default 1) multiplies
// problem sizes/seed counts for longer, higher-confidence runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

namespace dsnd::bench {

inline int scale() {
  if (const char* env = std::getenv("DSND_BENCH_SCALE")) {
    const int value = std::atoi(env);
    if (value >= 1) return value;
  }
  return 1;
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Renders kInfiniteDiameter as "inf" for table cells.
inline std::string diameter_cell(std::int32_t diameter) {
  return diameter == kInfiniteDiameter ? "inf" : std::to_string(diameter);
}

/// The families every experiment sweeps unless stated otherwise.
inline const std::vector<std::string>& default_families() {
  static const std::vector<std::string> kNames = {"gnp-sparse", "grid",
                                                  "random-tree"};
  return kNames;
}

}  // namespace dsnd::bench
