// E7 — the applications that motivated network decomposition in
// [AGLP89] and the paper's introduction: MIS, (Delta+1)-coloring, and
// maximal matching, each solved color class by color class in
// O(D * chi) rounds on top of the Elkin–Neiman decomposition, with
// Luby's randomized MIS (simulated, 3 rounds per iteration) as the
// classic alternative.
#include <cmath>
#include <iostream>

#include "apps/checkers.hpp"
#include "apps/coloring.hpp"
#include "apps/luby.hpp"
#include "apps/matching.hpp"
#include "apps/mis.hpp"
#include "apps/mis_distributed.hpp"
#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/properties.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E7 / symmetry breaking via network decomposition",
      "claim: given a (D, chi) decomposition, MIS / (Delta+1)-coloring / "
      "maximal matching complete in O(D * chi) rounds; Luby's MIS runs "
      "O(log n) iterations for comparison");

  const int seeds = 4 * bench::scale();
  bench::RetryStats stats;
  Table table({"family", "n", "decomp_rounds", "mis_rounds", "col_rounds",
               "match_rounds", "Dxchi", "local_rounds", "local_msg_words",
               "luby_rounds", "colors_used", "valid"});
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {256, 1024}) {
      Summary decomp_rounds, mis_rounds, col_rounds, match_rounds, dxchi,
          luby_rounds, colors_used, local_rounds;
      std::size_t local_width = 0;
      bool all_valid = true;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = family_by_name(family).make(
            n, static_cast<std::uint64_t>(s) + 1);
        ElkinNeimanOptions options;  // headline k = ln n regime
        options.seed = static_cast<std::uint64_t>(s) * 433494437 + 29;
        const DecompositionRun run = elkin_neiman_decomposition(g, options);
        decomp_rounds.add(static_cast<double>(run.carve.rounds));
        stats.observe(run.carve);

        // The pipeline as a genuine LOCAL protocol (when this run's
        // guarantees hold — with the Las Vegas recarve loop, every run
        // except a truncated kTruncate/blown-budget one).
        if (!bench::accepted_truncated_samples(run.carve)) {
          const DistributedMisResult local = mis_distributed_pipeline(
              g, run.clustering(), static_cast<std::int32_t>(run.k));
          local_rounds.add(static_cast<double>(local.sim.rounds));
          local_width = std::max(local_width, local.sim.max_message_words);
          if (!is_maximal_independent_set(g, local.in_mis)) {
            all_valid = false;
          }
        }

        const MisResult mis = mis_by_decomposition(g, run.clustering());
        const ColoringResult coloring =
            coloring_by_decomposition(g, run.clustering());
        const MatchingResult matching =
            matching_by_decomposition(g, run.clustering());
        mis_rounds.add(static_cast<double>(mis.cost.rounds));
        col_rounds.add(static_cast<double>(coloring.cost.rounds));
        match_rounds.add(static_cast<double>(matching.cost.rounds));
        dxchi.add(static_cast<double>(mis.cost.max_cluster_diameter) *
                  mis.cost.color_classes);
        colors_used.add(coloring.colors_used);
        if (!is_maximal_independent_set(g, mis.in_mis) ||
            !is_proper_vertex_coloring(g, coloring.colors) ||
            coloring.colors_used > max_degree(g) + 1 ||
            !is_maximal_matching(g, matching.mate)) {
          all_valid = false;
        }

        const LubyResult luby =
            luby_mis(g, static_cast<std::uint64_t>(s) * 87178291199 + 31);
        luby_rounds.add(static_cast<double>(luby.sim.rounds));
        if (!is_maximal_independent_set(g, luby.in_mis)) all_valid = false;
      }
      table.row()
          .cell(family)
          .cell(static_cast<std::int64_t>(n))
          .cell(decomp_rounds.mean(), 0)
          .cell(mis_rounds.mean(), 0)
          .cell(col_rounds.mean(), 0)
          .cell(match_rounds.mean(), 0)
          .cell(dxchi.mean(), 0)
          .cell(local_rounds.count() > 0
                    ? format_double(local_rounds.mean(), 0)
                    : "-")
          .cell(static_cast<std::uint64_t>(local_width))
          .cell(luby_rounds.mean(), 0)
          .cell(colors_used.mean(), 1)
          .cell(all_valid ? "ok" : "VIOLATED");
    }
  }
  table.print(std::cout);
  stats.print_line(std::cout);
  std::cout << "\nmis/col/match rounds track Dxchi (the O(D*chi) pipeline "
               "bound, here after the decomposition's own rounds); Luby "
               "needs ~3*O(log n) rounds but no decomposition. All outputs "
               "are verified (the 'valid' column).\n";
  return 0;
}
