// E2 — Theorem 2 (Section 2.1): the multistage beta schedule improves the
// color count from (cn)^{1/k} ln(cn) to 4k (cn)^{1/k} at the same strong
// diameter 2k-2, in O(k^2 (cn)^{1/k}) rounds, success prob >= 1 - 5/c.
//
// The table puts Theorem 1 and Theorem 2 side by side on identical
// graphs: the multistage colors must (a) stay below 4k(cn)^{1/k} and
// (b) beat Theorem 1's measured colors wherever ln(cn) > 4k — the paper's
// small-k regime.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/multistage.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  const double c = 6.0;
  bench::print_header(
      "E2 / Theorem 2 (improved number of blocks)",
      "claim: strong (2k-2, 4k(cn)^{1/k}) decomposition, rounds "
      "O(k^2 (cn)^{1/k}), success prob >= 1 - 5/c  (c = 6)");

  Table table({"family", "n", "k", "T2_colors", "T2_bound", "T1_colors",
               "D_max", "D_bound", "T2_rounds", "retries", "success",
               "check"});
  const int seeds = 6 * bench::scale();
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {256, 1024}) {
      for (const std::int32_t k : {1, 2, 3, 5}) {
        Summary t1_colors, t2_colors, t2_rounds;
        Summary diameters;
        bench::RetryStats stats;
        int successes = 0;
        int diameter_runs = 0;
        bool violated = false;
        // Promised bounds come from the run's TheoremBounds (the
        // schedule factory), so measured-vs-promised cannot drift from
        // the library. Identical for every seed at fixed (n, k, c).
        TheoremBounds bounds;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = family_by_name(family).make(
              n, static_cast<std::uint64_t>(s) + 1);
          const std::uint64_t seed =
              static_cast<std::uint64_t>(s) * 104729 + 3;

          ElkinNeimanOptions t1;
          t1.k = k;
          t1.c = c;
          t1.seed = seed;
          t1_colors.add(
              elkin_neiman_decomposition(g, t1).carve.phases_used);

          MultistageOptions t2;
          t2.k = k;
          t2.c = c;
          t2.seed = seed;
          const DecompositionRun run = multistage_decomposition(g, t2);
          bounds = run.bounds;
          t2_colors.add(run.carve.phases_used);
          t2_rounds.add(static_cast<double>(run.carve.rounds));
          if (run.carve.exhausted_within_target) ++successes;
          stats.observe(run.carve);
          if (!bench::accepted_truncated_samples(run.carve)) {
            const DecompositionReport report = validate_decomposition(
                g, run.clustering(), /*compute_weak=*/false);
            ++diameter_runs;
            diameters.add(report.max_strong_diameter);
            if (report.max_strong_diameter == kInfiniteDiameter ||
                static_cast<double>(report.max_strong_diameter) >
                    run.bounds.strong_diameter) {
              violated = true;
            }
          }
        }
        table.row()
            .cell(family)
            .cell(static_cast<std::int64_t>(n))
            .cell(k)
            .cell(t2_colors.mean(), 1)
            .cell(bounds.colors, 0)
            .cell(t1_colors.mean(), 1)
            .cell(diameter_runs > 0 ? format_double(diameters.max(), 0)
                                    : "-")
            .cell(bounds.strong_diameter, 0)
            .cell(t2_rounds.mean(), 0)
            .cell(static_cast<std::int64_t>(stats.retries))
            .cell(static_cast<double>(successes) / seeds, 2)
            .cell(violated ? "VIOLATED" : "ok");
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nFor small k (ln(cn) > 4k) T2_colors should undercut "
               "T1_colors; both respect D_bound.\n";
  return 0;
}
