// E12 (extension) — sparse neighborhood covers, the [AP92, ABCP92]
// application direction cited in the paper. Builds (W, chi)-covers by
// decomposing G^{2W+1} and expanding clusters by W; verifies the three
// cover properties and reports overlap (vertex load) and diameter
// against their bounds.
#include <iostream>

#include "bench_common.hpp"
#include "decomposition/covers.hpp"
#include "support/stats.hpp"

int main() {
  using namespace dsnd;
  bench::print_header(
      "E12 / sparse neighborhood covers from the decomposition",
      "claims: every ball B(v, W) inside one cluster; same-colored "
      "clusters disjoint (overlap <= chi); strong diameter <= "
      "(2W+1)(2k-2) + 2W");

  const int seeds = 3 * bench::scale();
  const std::int32_t k = 3;
  bench::RetryStats stats;
  Table table({"family", "n", "W", "clusters", "colors", "max_overlap",
               "D_max", "D_bound", "balls_covered", "check"});
  for (const std::string& family : bench::default_families()) {
    for (const VertexId n : {128, 256}) {
      for (const std::int32_t w : {1, 2, 3}) {
        Summary clusters, colors, overlap, diameter;
        bool covered_all = true;
        bool ok = true;
        int checked = 0;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = family_by_name(family).make(
              n, static_cast<std::uint64_t>(s) + 1);
          CoverOptions options;
          options.radius = w;
          options.k = k;
          options.seed = static_cast<std::uint64_t>(s) * 5754853343 + 7;
          const NeighborhoodCover cover =
              build_neighborhood_cover(g, options);
          const CoverReport report = validate_cover(g, cover);
          if (!report.all_balls_covered) covered_all = false;
          stats.observe(cover.base.carve);
          if (bench::accepted_truncated_samples(cover.base.carve)) continue;
          ++checked;
          clusters.add(static_cast<double>(cover.clusters.size()));
          colors.add(cover.num_colors);
          overlap.add(report.max_overlap);
          if (report.max_strong_diameter != kInfiniteDiameter) {
            diameter.add(report.max_strong_diameter);
          }
          const std::int32_t bound = (2 * w + 1) * (2 * k - 2) + 2 * w;
          if (!report.color_classes_disjoint ||
              !report.all_clusters_connected ||
              report.max_strong_diameter == kInfiniteDiameter ||
              report.max_strong_diameter > bound) {
            ok = false;
          }
        }
        table.row()
            .cell(family)
            .cell(static_cast<std::int64_t>(n))
            .cell(w)
            .cell(checked > 0 ? format_double(clusters.mean(), 1) : "-")
            .cell(checked > 0 ? format_double(colors.mean(), 1) : "-")
            .cell(checked > 0 ? format_double(overlap.max(), 0) : "-")
            .cell(checked > 0 ? format_double(diameter.max(), 0) : "-")
            .cell((2 * w + 1) * (2 * k - 2) + 2 * w)
            .cell(covered_all ? "100%" : "VIOLATED")
            .cell(ok ? "ok" : "VIOLATED");
      }
    }
  }
  table.print(std::cout);
  stats.print_line(std::cout);
  std::cout << "\nmax_overlap stays <= colors (each vertex lies in at most "
               "chi cover clusters).\n";
  return 0;
}
