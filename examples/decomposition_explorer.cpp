// Interactive-ish CLI over the whole library: pick a graph family (or an
// edge-list file), an algorithm, and parameters; get the decomposition
// quality report and optionally a per-cluster dump or CSV.
//
//   ./decomposition_explorer --family grid --n 400 --algo en --k 4
//   ./decomposition_explorer --file my_graph.txt --algo ls --k 5 --clusters
//   ./decomposition_explorer --family gnp-sparse --algo mpx --beta 0.2 --csv
//
// Algorithms: en (Theorem 1), ms (Theorem 2), hr (Theorem 3),
//             ls (Linial–Saks), mpx (padded partition).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/linial_saks.hpp"
#include "decomposition/mpx.hpp"
#include "decomposition/multistage.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

namespace {

using namespace dsnd;

struct Args {
  std::string family = "gnp-sparse";
  std::optional<std::string> file;
  std::string algo = "en";
  VertexId n = 512;
  std::int32_t k = 0;
  std::int32_t lambda = 3;
  double beta = 0.2;
  double c = 4.0;
  std::uint64_t seed = 1;
  bool dump_clusters = false;
  bool csv = false;
};

void usage() {
  std::cout <<
      "usage: decomposition_explorer [--family NAME | --file PATH]\n"
      "         [--algo en|ms|hr|ls|mpx] [--n N] [--k K] [--lambda L]\n"
      "         [--beta B] [--c C] [--seed S] [--clusters] [--csv]\n"
      "families:";
  for (const GraphFamily& family : standard_families()) {
    std::cout << ' ' << family.name;
  }
  std::cout << '\n';
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage();
      return std::nullopt;
    } else if (flag == "--clusters") {
      args.dump_clusters = true;
    } else if (flag == "--csv") {
      args.csv = true;
    } else {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      if (flag == "--family") args.family = value;
      else if (flag == "--file") args.file = value;
      else if (flag == "--algo") args.algo = value;
      else if (flag == "--n") args.n = std::atoi(value);
      else if (flag == "--k") args.k = std::atoi(value);
      else if (flag == "--lambda") args.lambda = std::atoi(value);
      else if (flag == "--beta") args.beta = std::atof(value);
      else if (flag == "--c") args.c = std::atof(value);
      else if (flag == "--seed") args.seed = std::strtoull(value, nullptr, 10);
      else {
        std::cerr << "unknown flag " << flag << "\n";
        usage();
        return std::nullopt;
      }
    }
  }
  return args;
}

void report_clustering(const Graph& g, const Clustering& clustering,
                       const Args& args) {
  const DecompositionReport report = validate_decomposition(g, clustering);
  Table table({"metric", "value"});
  table.row().cell("clusters").cell(report.num_clusters);
  table.row().cell("colors").cell(report.num_colors);
  table.row().cell("max strong diameter").cell(
      report.max_strong_diameter == kInfiniteDiameter
          ? "inf"
          : std::to_string(report.max_strong_diameter));
  table.row().cell("max weak diameter").cell(
      report.max_weak_diameter == kInfiniteDiameter
          ? "inf"
          : std::to_string(report.max_weak_diameter));
  table.row().cell("disconnected clusters").cell(
      report.disconnected_clusters);
  table.row().cell("avg cluster size").cell(report.avg_cluster_size, 1);
  table.row().cell("max cluster size").cell(
      static_cast<std::int64_t>(report.max_cluster_size));
  table.row().cell("complete partition").cell(
      report.complete ? "yes" : "NO");
  table.row().cell("proper phase coloring").cell(
      report.proper_phase_coloring ? "yes" : "NO");
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (args.dump_clusters) {
    Table clusters({"cluster", "color", "center", "size", "members"});
    const ClusterMembers members = clustering.members_csr();
    for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
      std::string list;
      for (const VertexId v : members.of(c)) {
        if (!list.empty()) list += ' ';
        list += std::to_string(v);
        if (list.size() > 60) {
          list += " ...";
          break;
        }
      }
      clusters.row()
          .cell(static_cast<std::int64_t>(c))
          .cell(clustering.color_of(c))
          .cell(static_cast<std::int64_t>(clustering.center_of(c)))
          .cell(static_cast<std::int64_t>(members.size_of(c)))
          .cell(list);
    }
    if (args.csv) {
      clusters.print_csv(std::cout);
    } else {
      clusters.print(std::cout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto maybe_args = parse(argc, argv);
  if (!maybe_args) return 1;
  const Args& args = *maybe_args;

  const Graph g = args.file ? load_edge_list(*args.file)
                            : family_by_name(args.family).make(args.n,
                                                               args.seed);
  std::cout << "graph: " << describe(g) << "\n";

  if (args.algo == "en") {
    ElkinNeimanOptions options;
    options.k = args.k;
    options.c = args.c;
    options.seed = args.seed;
    const DecompositionRun run = elkin_neiman_decomposition(g, options);
    std::cout << "Elkin–Neiman Theorem 1: k=" << run.k << " phases="
              << run.carve.phases_used << " rounds=" << run.carve.rounds
              << (run.carve.retries > 0
                      ? " [" + std::to_string(run.carve.retries) +
                            " recarve retries]"
                      : "")
              << (run.carve.radius_overflow ? " [radius overflow]" : "")
              << "\n";
    report_clustering(g, run.clustering(), args);
  } else if (args.algo == "ms") {
    MultistageOptions options;
    options.k = args.k;
    options.c = std::max(args.c, 6.0);
    options.seed = args.seed;
    const DecompositionRun run = multistage_decomposition(g, options);
    std::cout << "Elkin–Neiman Theorem 2 (multistage): k=" << run.k
              << " phases=" << run.carve.phases_used << "\n";
    report_clustering(g, run.clustering(), args);
  } else if (args.algo == "hr") {
    HighRadiusOptions options;
    options.lambda = args.lambda;
    options.c = args.c;
    options.seed = args.seed;
    const DecompositionRun run = high_radius_decomposition(g, options);
    std::cout << "Elkin–Neiman Theorem 3 (high radius): lambda="
              << args.lambda << " phases=" << run.carve.phases_used << "\n";
    report_clustering(g, run.clustering(), args);
  } else if (args.algo == "ls") {
    LinialSaksOptions options;
    options.k = args.k;
    options.seed = args.seed;
    const DecompositionRun run = linial_saks_decomposition(g, options);
    std::cout << "Linial–Saks: k=" << run.k << " phases="
              << run.carve.phases_used << "\n";
    report_clustering(g, run.clustering(), args);
  } else if (args.algo == "mpx") {
    const MpxResult result =
        mpx_partition(g, {.beta = args.beta, .seed = args.seed});
    std::cout << "MPX padded partition: beta=" << args.beta
              << " cut_fraction=" << result.cut_fraction << "\n";
    report_clustering(g, result.clustering, args);
  } else {
    std::cerr << "unknown algorithm " << args.algo << "\n";
    usage();
    return 1;
  }
  return 0;
}
