// Watch the CONGEST protocol run: executes any of the three theorem
// schedules as a distributed algorithm on the synchronous simulator and
// prints the per-round message traffic, phase structure, and the
// O(1)-word message guarantee, then cross-checks the outcome against the
// centralized reference (run_schedule on the same CarveSchedule — the
// two must be bit-identical).
//
//   ./congest_trace [--theorem {1,2,3}] [n] [k] [seed]
//
// The third positional argument is the radius parameter k for Theorems
// 1-2 and the color budget lambda for Theorem 3.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "decomposition/carve_schedule.hpp"
#include "decomposition/carving_protocol.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "decomposition/high_radius.hpp"
#include "decomposition/multistage.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dsnd;
  int theorem = 1;
  const char* positional[3] = {"144", "4", "3"};  // n, k (or lambda), seed
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--theorem") == 0 && i + 1 < argc) {
      theorem = std::atoi(argv[++i]);
    } else if (npos < 3) {
      positional[npos++] = argv[i];
    }
  }
  if (theorem < 1 || theorem > 3) {
    std::cerr << "usage: congest_trace [--theorem {1,2,3}] [n] [k] [seed]\n";
    return 2;
  }
  const auto n = static_cast<VertexId>(std::atoi(positional[0]));
  const auto k = static_cast<std::int32_t>(std::atoi(positional[1]));
  const std::uint64_t seed = std::strtoull(positional[2], nullptr, 10);

  const Graph g = make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  std::cout << "network: " << describe(g) << "\n";

  // One schedule drives both executions — this is the whole point of the
  // carving core: the distributed run below and the centralized
  // cross-check at the end consume the identical CarveSchedule.
  const CarveSchedule schedule =
      theorem == 1   ? theorem1_schedule(n, k, 4.0)
      : theorem == 2 ? theorem2_schedule(n, k, 6.0)
                     : theorem3_schedule(n, k, 4.0);
  std::cout << "schedule: " << schedule.name << " — "
            << schedule.target_phases() << " scheduled phases, "
            << schedule.phase_rounds << " broadcast rounds per phase\n";

  const DistributedRun dist = run_schedule_distributed(g, schedule, seed);

  std::cout << "protocol finished: " << dist.sim.rounds << " rounds, "
            << dist.sim.messages << " messages, " << dist.sim.words
            << " words, max message width " << dist.sim.max_message_words
            << " words (CONGEST bound: " << kMaxProtocolMessageWords
            << ")\n\n";

  // Per-round traffic, annotated with the phase structure: each phase is
  // phase_rounds broadcast steps followed by one membership-announcement
  // step.
  Table table({"round", "phase", "step", "messages"});
  const auto phase_len =
      static_cast<std::size_t>(schedule.phase_rounds) + 1;
  for (std::size_t r = 0; r < dist.sim.messages_per_round.size(); ++r) {
    const std::size_t phase = r / phase_len;
    const std::size_t step = r % phase_len;
    table.row()
        .cell(static_cast<std::uint64_t>(r))
        .cell(static_cast<std::uint64_t>(phase))
        .cell(step == phase_len - 1 ? "announce"
                                    : "broadcast " + std::to_string(step))
        .cell(dist.sim.messages_per_round[r]);
  }
  if (dist.sim.messages_per_round.size() > 160) {
    std::cout << "(" << dist.sim.messages_per_round.size()
              << " simulated rounds; printing the per-round table only for "
                 "short runs)\n";
  } else {
    table.print(std::cout);
  }

  // Equivalence against the centralized reference of the same schedule.
  const DecompositionRun central = run_schedule(g, schedule, seed);
  bool identical = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (central.clustering().cluster_of(v) !=
        dist.run.clustering().cluster_of(v)) {
      identical = false;
    }
  }
  std::cout << "\ncentralized reference produced "
            << (identical ? "the identical clustering" : "A DIFFERENT result")
            << " (" << central.clustering().num_clusters() << " clusters, "
            << central.carve.phases_used << " phases; promised colors <= "
            << schedule.bounds.colors << ", strong diameter <= "
            << schedule.bounds.strong_diameter << ")\n";
  return identical ? 0 : 1;
}
