// Watch the CONGEST protocol run: executes the distributed Elkin–Neiman
// algorithm on the synchronous simulator and prints the per-round
// message traffic, phase structure, and the O(1)-word message guarantee,
// then cross-checks the outcome against the centralized reference.
//
//   ./congest_trace [n] [k] [seed]
#include <cstdlib>
#include <iostream>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/elkin_neiman_distributed.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dsnd;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 144;
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  const Graph g = make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  std::cout << "network: " << describe(g) << "\n";

  ElkinNeimanOptions options;
  options.k = k;
  options.seed = seed;
  const DistributedRun dist = elkin_neiman_distributed(g, options);

  std::cout << "protocol finished: " << dist.sim.rounds << " rounds, "
            << dist.sim.messages << " messages, " << dist.sim.words
            << " words, max message width " << dist.sim.max_message_words
            << " words (CONGEST bound: " << kMaxProtocolMessageWords
            << ")\n\n";

  // Per-round traffic, annotated with the phase structure: each phase is
  // k broadcast steps followed by one membership-announcement step.
  Table table({"round", "phase", "step", "messages"});
  const std::size_t phase_len = static_cast<std::size_t>(k) + 1;
  for (std::size_t r = 0; r < dist.sim.messages_per_round.size(); ++r) {
    const std::size_t phase = r / phase_len;
    const std::size_t step = r % phase_len;
    table.row()
        .cell(static_cast<std::uint64_t>(r))
        .cell(static_cast<std::uint64_t>(phase))
        .cell(step == phase_len - 1 ? "announce"
                                    : "broadcast " + std::to_string(step))
        .cell(dist.sim.messages_per_round[r]);
  }
  table.print(std::cout);

  // Equivalence against the centralized reference.
  const DecompositionRun central = elkin_neiman_decomposition(g, options);
  bool identical = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (central.clustering().cluster_of(v) !=
        dist.run.clustering().cluster_of(v)) {
      identical = false;
    }
  }
  std::cout << "\ncentralized reference produced "
            << (identical ? "the identical clustering" : "A DIFFERENT result")
            << " (" << central.clustering().num_clusters() << " clusters, "
            << central.carve.phases_used << " phases)\n";
  return identical ? 0 : 1;
}
