// Quickstart: build a graph, compute the paper's strong (O(log n),
// O(log n)) network decomposition, validate it, and print a summary.
//
//   ./quickstart [n] [k] [seed]
//
// Defaults: n = 1024 (sparse random graph), k = ceil(ln n), seed = 1.
#include <cstdlib>
#include <iostream>

#include "decomposition/elkin_neiman.hpp"
#include "decomposition/supergraph.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dsnd;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const std::int32_t k = argc > 2 ? std::atoi(argv[2]) : 0;  // 0 = ln n
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 1;

  // 1. A graph. Any dsnd::Graph works; here a sparse Erdős–Rényi graph
  //    with average degree ~6.
  const Graph g = make_gnp(n, 6.0 / std::max(n - 1, 1), seed);
  std::cout << "graph: " << describe(g) << "\n";

  // 2. Decompose. k = 0 picks ceil(ln n) — the headline regime.
  ElkinNeimanOptions options;
  options.k = k;
  options.seed = seed;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);

  // 3. Validate against the paper's bounds (brute-force checkers).
  const DecompositionReport report =
      validate_decomposition(g, run.clustering());

  Table table({"quantity", "measured", "theorem bound"});
  table.row()
      .cell("strong diameter")
      .cell(report.max_strong_diameter == kInfiniteDiameter
                ? "inf"
                : std::to_string(report.max_strong_diameter))
      .cell(format_double(run.bounds.strong_diameter, 0));
  table.row()
      .cell("colors (phases)")
      .cell(run.carve.phases_used)
      .cell(format_double(run.bounds.colors, 0));
  table.row()
      .cell("rounds")
      .cell(run.carve.rounds)
      .cell(format_double(run.bounds.rounds, 0));
  table.row()
      .cell("clusters")
      .cell(report.num_clusters)
      .cell("-");
  table.row()
      .cell("avg cluster size")
      .cell(report.avg_cluster_size, 1)
      .cell("-");
  table.print(std::cout);

  std::cout << "complete partition:   "
            << (report.complete ? "yes" : "NO") << "\n"
            << "proper phase colors:  "
            << (report.proper_phase_coloring ? "yes" : "NO") << "\n"
            << "clusters connected:   "
            << (report.all_clusters_connected ? "yes" : "NO") << "\n"
            << "radius overflow:      "
            << (run.carve.radius_overflow
                    ? "yes (Lemma 1 event, truncated samples accepted)"
                    : "no")
            << "\n"
            << "Lemma 1 recoveries:   " << run.carve.retries
            << " retries (" << run.carve.extra_rounds << " extra rounds)\n"
            << "greedy recoloring:    "
            << greedy_supergraph_colors(g, run.clustering())
            << " colors (vs " << run.clustering().num_colors()
            << " phase colors)\n";
  return 0;
}
