// The wider locality toolkit that network decomposition unlocks (the
// application lines cited in the paper's introduction and related work):
//   1. a sparse (W, chi)-neighborhood cover   [AP92, ABCP92]
//   2. two O(k)-stretch spanners              [DMP+05]
//   3. an HST tree embedding                  [Bar96]
// all built on the Elkin–Neiman decomposition / MPX partitions of this
// library, each verified on the spot.
//
//   ./locality_toolkit [n] [seed]
#include <cstdlib>
#include <iostream>

#include "apps/spanner.hpp"
#include "decomposition/covers.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "decomposition/hst.hpp"
#include "decomposition/validation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dsnd;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  const Graph g = make_gnp(n, 10.0 / std::max(n - 1, 1), seed);
  std::cout << "graph: " << describe(g) << "\n\n";
  const std::int32_t k = 4;

  // --- 1. Neighborhood cover ---------------------------------------------
  CoverOptions cover_options;
  cover_options.radius = 2;
  cover_options.k = k;
  cover_options.seed = seed;
  const NeighborhoodCover cover = build_neighborhood_cover(g, cover_options);
  const CoverReport cover_report = validate_cover(g, cover);
  std::cout << "neighborhood cover (W=2): " << cover.clusters.size()
            << " clusters, " << cover.num_colors << " colors, max overlap "
            << cover_report.max_overlap << ", balls covered: "
            << (cover_report.all_balls_covered ? "all" : "MISSING SOME")
            << "\n";

  // --- 2. Spanners ---------------------------------------------------------
  ElkinNeimanOptions en;
  en.k = k;
  en.seed = seed;
  const DecompositionRun run = elkin_neiman_decomposition(g, en);
  const SpannerResult dec_spanner =
      spanner_by_decomposition(g, run.clustering());
  CoverOptions w1 = cover_options;
  w1.radius = 1;
  const NeighborhoodCover cover1 = build_neighborhood_cover(g, w1);
  const SpannerResult cov_spanner = spanner_from_cover(g, cover1);

  Table spanners({"construction", "edges", "of m", "stretch", "bound"});
  spanners.row()
      .cell("decomposition trees + bridges")
      .cell(dec_spanner.edges)
      .cell(format_double(100.0 * static_cast<double>(dec_spanner.edges) /
                              static_cast<double>(g.num_edges()),
                          1) +
            "%")
      .cell(dec_spanner.stretch)
      .cell(4 * k - 3);
  spanners.row()
      .cell("cover trees (W=1)")
      .cell(cov_spanner.edges)
      .cell(format_double(100.0 * static_cast<double>(cov_spanner.edges) /
                              static_cast<double>(g.num_edges()),
                          1) +
            "%")
      .cell(cov_spanner.stretch)
      .cell(3 * (2 * k - 2) + 2);
  spanners.print(std::cout);

  // --- 3. Tree embedding ----------------------------------------------------
  const HstTree tree = build_hst(g, {.c = 4.0, .seed = seed});
  const StretchReport stretch = measure_hst_stretch(g, tree, 500, seed);
  std::cout << "\nHST embedding: " << tree.num_nodes() << " tree nodes, "
            << tree.num_levels() << " levels; over " << stretch.pairs
            << " sampled pairs: mean stretch "
            << format_double(stretch.mean, 2) << ", max "
            << format_double(stretch.max, 1) << ", dominating: "
            << (stretch.dominating ? "yes" : "NO") << "\n";
  return 0;
}
