// The paper's motivating application: solve three classic symmetry
// breaking problems — maximal independent set, (Delta+1)-coloring, and
// maximal matching — on a torus network, by processing the network
// decomposition color class by color class (O(D * chi) rounds), and
// compare the MIS against Luby's classic randomized algorithm running on
// the message-passing simulator.
//
//   ./symmetry_breaking [side] [seed]
#include <cstdlib>
#include <iostream>

#include "apps/checkers.hpp"
#include "apps/coloring.hpp"
#include "apps/luby.hpp"
#include "apps/matching.hpp"
#include "apps/mis.hpp"
#include "decomposition/elkin_neiman.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dsnd;
  const VertexId side = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const Graph g = make_torus2d(side, side);
  std::cout << "network: " << side << "x" << side << " torus, "
            << describe(g) << "\n\n";

  ElkinNeimanOptions options;  // k = ceil(ln n)
  options.seed = seed;
  const DecompositionRun run = elkin_neiman_decomposition(g, options);
  std::cout << "decomposition: " << run.clustering().num_clusters()
            << " clusters, " << run.clustering().num_colors()
            << " colors, computed in " << run.carve.rounds
            << " simulated rounds\n\n";

  const MisResult mis = mis_by_decomposition(g, run.clustering());
  const ColoringResult coloring =
      coloring_by_decomposition(g, run.clustering());
  const MatchingResult matching =
      matching_by_decomposition(g, run.clustering());
  const LubyResult luby = luby_mis(g, seed);

  VertexId mis_size = 0;
  for (const char b : mis.in_mis) mis_size += b;
  VertexId luby_size = 0;
  for (const char b : luby.in_mis) luby_size += b;

  Table table({"problem", "algorithm", "rounds", "result", "verified"});
  table.row()
      .cell("MIS")
      .cell("decomposition pipeline")
      .cell(mis.cost.rounds)
      .cell("size " + std::to_string(mis_size))
      .cell(is_maximal_independent_set(g, mis.in_mis) ? "yes" : "NO");
  table.row()
      .cell("MIS")
      .cell("Luby (simulated)")
      .cell(static_cast<std::int64_t>(luby.sim.rounds))
      .cell("size " + std::to_string(luby_size))
      .cell(is_maximal_independent_set(g, luby.in_mis) ? "yes" : "NO");
  table.row()
      .cell("(Delta+1)-coloring")
      .cell("decomposition pipeline")
      .cell(coloring.cost.rounds)
      .cell(std::to_string(coloring.colors_used) + " colors (Delta+1 = " +
            std::to_string(max_degree(g) + 1) + ")")
      .cell(is_proper_vertex_coloring(g, coloring.colors) ? "yes" : "NO");
  table.row()
      .cell("maximal matching")
      .cell("decomposition pipeline")
      .cell(matching.cost.rounds)
      .cell(std::to_string(matching.matched_edges) + " edges")
      .cell(is_maximal_matching(g, matching.mate) ? "yes" : "NO");
  table.print(std::cout);

  std::cout << "\npipeline rounds exclude the decomposition itself ("
            << run.carve.rounds << " rounds, reusable across problems)\n";
  return 0;
}
